package rlibm

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"rlibm/internal/fp"
	"rlibm/internal/libm"
)

// TestBatchMatchesScalar exhaustively compares the batch kernels against
// per-element scalar calls over every input of small formats (all bit
// patterns, specials included), for every function and scheme. Batch
// evaluation must be bit-identical to the scalar path — the serving layer's
// correctness rests on this.
func TestBatchMatchesScalar(t *testing.T) {
	widths := []int{10, 12, 14}
	if testing.Short() {
		widths = []int{10, 14}
	}
	for _, bits := range widths {
		format := fp.Format{Bits: bits, ExpBits: 8}
		var src []float32
		format.Values(func(_ uint64, v float64) bool {
			src = append(src, float32(v))
			return true
		})
		dst := make([]float32, len(src))
		for _, f := range Funcs {
			for _, s := range Schemes {
				EvalBatch(f, s, dst, src)
				for i, x := range src {
					want := Eval(f, s, x)
					if math.Float32bits(dst[i]) != math.Float32bits(want) {
						t.Fatalf("%v/%v bits=%d: batch(%g) = %b, scalar = %b",
							f, s, bits, x, dst[i], want)
					}
				}
			}
		}
	}
}

// TestBatchMatchesLibm pins the public package to the internal library: the
// batch output must equal float32(libm.<Fn>Double(x, scheme)) bit for bit,
// not merely be self-consistent with Eval.
func TestBatchMatchesLibm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]float32, 4096)
	for i := range src {
		src[i] = math.Float32frombits(rng.Uint32())
	}
	dst := make([]float32, len(src))
	for fi, f := range Funcs {
		for si, s := range Schemes {
			EvalBatch(f, s, dst, src)
			double := libm.Funcs[fi].Double
			for i, x := range src {
				want := float32(double(x, libm.Scheme(si)))
				if math.Float32bits(dst[i]) != math.Float32bits(want) {
					t.Fatalf("%v/%v: batch(%g) = %b, libm = %b", f, s, x, dst[i], want)
				}
			}
		}
	}
}

// TestBatchFanOutIdentical drives a slice large enough to take the fan-out
// path under several worker caps and checks all outputs agree bit for bit
// with the inline path.
func TestBatchFanOutIdentical(t *testing.T) {
	n := fanOutThreshold + fanOutChunk/2 // large, deliberately not chunk-aligned
	rng := rand.New(rand.NewSource(11))
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(rng.Float64()*200 - 100)
	}
	want := make([]float32, n)
	prev := SetMaxBatchWorkers(1) // inline reference
	if prev == 0 {
		// Process-start default: the internal 0 means GOMAXPROCS but is no
		// longer accepted by the setter.
		prev = runtime.GOMAXPROCS(0)
	}
	Exp2Batch(want, src)
	got := make([]float32, n)
	for _, workers := range []int{2, 3, 8} {
		SetMaxBatchWorkers(workers)
		for i := range got {
			got[i] = 0
		}
		Exp2Batch(got, src)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("workers=%d: element %d differs", workers, i)
			}
		}
	}
	SetMaxBatchWorkers(prev)
}

// TestSetMaxBatchWorkersRejectsNonPositive: 0 used to silently mean
// "GOMAXPROCS", which masked miswired configuration (a zero-valued config
// struct would quietly pick a parallelism policy). Now it panics and leaves
// the cap unchanged.
func TestSetMaxBatchWorkersRejectsNonPositive(t *testing.T) {
	prev := SetMaxBatchWorkers(3)
	if prev == 0 {
		prev = runtime.GOMAXPROCS(0)
	}
	defer SetMaxBatchWorkers(prev)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetMaxBatchWorkers(%d) did not panic", n)
				}
			}()
			SetMaxBatchWorkers(n)
		}()
	}
	if got := SetMaxBatchWorkers(3); got != 3 {
		t.Errorf("cap changed by rejected call: got %d, want 3", got)
	}
}

// TestBatchZeroAllocs: below the fan-out threshold a batch call must not
// allocate — the serving hot path depends on it.
func TestBatchZeroAllocs(t *testing.T) {
	src := make([]float32, 1024)
	for i := range src {
		src[i] = float32(i%250) / 16
	}
	dst := make([]float32, len(src))
	if avg := testing.AllocsPerRun(20, func() { Log2Batch(dst, src) }); avg != 0 {
		t.Errorf("Log2Batch allocates %.1f objects per call on the inline path", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { EvalBatch(FuncExp, Horner, dst, src) }); avg != 0 {
		t.Errorf("EvalBatch allocates %.1f objects per call on the inline path", avg)
	}
}

// TestBatchDstShorterPanics: the length contract is enforced, not silently
// truncated.
func TestBatchDstShorterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EvalBatch with short dst did not panic")
		}
	}()
	EvalBatch(FuncExp, Horner, make([]float32, 3), make([]float32, 4))
}

// TestBatchExtraDstUntouched: only the first len(src) elements of dst are
// written.
func TestBatchExtraDstUntouched(t *testing.T) {
	src := []float32{1, 2}
	dst := []float32{9, 9, 9, 9}
	ExpBatch(dst, src)
	if dst[2] != 9 || dst[3] != 9 {
		t.Errorf("dst tail overwritten: %v", dst)
	}
}

// TestParseRoundTrips: names round-trip through the parsers, including the
// generator spellings for schemes.
func TestParseRoundTrips(t *testing.T) {
	for _, f := range Funcs {
		got, err := ParseFunc(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFunc(%q) = %v, %v", f.String(), got, err)
		}
	}
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	for name, want := range map[string]Scheme{"horner": Horner, "knuth": Knuth, "estrin": Estrin, "estrin-fma": EstrinFMA} {
		if got, err := ParseScheme(name); err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseFunc("tan"); err == nil {
		t.Error("ParseFunc(tan) succeeded")
	}
	if _, err := ParseScheme("neon"); err == nil {
		t.Error("ParseScheme(neon) succeeded")
	}
}

// BenchmarkBatchVsScalar quantifies what batching buys over per-call scalar
// dispatch (the quantity the serve BENCH JSON reports).
func BenchmarkBatchVsScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := make([]float32, 8192)
	for i := range src {
		src[i] = float32(rng.Float64()*200 - 100)
	}
	dst := make([]float32, len(src))
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Exp2Batch(dst, src)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(src)), "ns/elem")
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, x := range src {
				dst[j] = Eval(FuncExp2, EstrinFMA, x)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(src)), "ns/elem")
	})
	runtime.KeepAlive(dst)
}

package rlibm

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"rlibm/internal/fp"
)

// TestNewValidates: New is the validation sink for external input — invalid
// components come back as errors enumerating the valid set, never panics or
// nil evaluators.
func TestNewValidates(t *testing.T) {
	if _, err := New(Func(99), EstrinFMA); err == nil || !strings.Contains(err.Error(), "exp2") {
		t.Errorf("New(Func(99), ...) error = %v, want enumeration of valid funcs", err)
	}
	if _, err := New(FuncExp, Scheme(-1)); err == nil || !strings.Contains(err.Error(), "rlibm-estrin-fma") {
		t.Errorf("New(..., Scheme(-1)) error = %v, want enumeration of valid schemes", err)
	}
	if _, err := New(FuncExp, Horner, WithPrecision(Precision(7))); err == nil || !strings.Contains(err.Error(), "bf16") {
		t.Errorf("New with bad precision error = %v, want enumeration of valid precisions", err)
	}
	e, err := New(FuncLog2, Estrin)
	if err != nil {
		t.Fatalf("New(log2, estrin) failed: %v", err)
	}
	if e.Func() != FuncLog2 || e.Scheme() != Estrin || e.Prec() != PrecFloat32 {
		t.Errorf("accessors = %v/%v/%v", e.Func(), e.Scheme(), e.Prec())
	}
}

// TestEvaluatorFullPrecisionMatchesPackage: the default-precision Evaluator is
// a resolved-dispatch view of the package-level API — identical bits, and the
// deprecated Kernel(f, s) is the same function the Evaluator holds.
func TestEvaluatorFullPrecisionMatchesPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, f := range Funcs {
		for _, s := range Schemes {
			e, err := New(f, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 256; i++ {
				x := math.Float32frombits(rng.Uint32())
				if got, want := e.Eval(x), Eval(f, s, x); math.Float32bits(got) != math.Float32bits(want) {
					t.Fatalf("%v/%v: Evaluator.Eval(%g) = %b, Eval = %b", f, s, x, got, want)
				}
			}
			d := float64(1.25)
			if got, want := e.Kernel()(d), Kernel(f, s)(d); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%v/%v: Evaluator.Kernel disagrees with deprecated Kernel", f, s)
			}
		}
	}
}

// TestEvaluatorNarrowOutputsRepresentable: every result of a narrow-precision
// Evaluator must be exactly a value of the narrow output format (bfloat16 and
// tf32 embed exactly in float32, so re-rounding must be the identity).
func TestEvaluatorNarrowOutputsRepresentable(t *testing.T) {
	formats := map[Precision]fp.Format{PrecTF32: fp.TensorFloat32, PrecBfloat16: fp.Bfloat16}
	rng := rand.New(rand.NewSource(23))
	for _, p := range []Precision{PrecTF32, PrecBfloat16} {
		format := formats[p]
		for _, f := range Funcs {
			for _, s := range Schemes {
				e, err := New(f, s, WithPrecision(p))
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 512; i++ {
					x := math.Float32frombits(rng.Uint32())
					y := e.Eval(x)
					if math.IsNaN(float64(y)) {
						continue
					}
					r := format.Round(float64(y), fp.RNE)
					if math.Float32bits(float32(r)) != math.Float32bits(y) {
						t.Fatalf("%v/%v/%v: Eval(%g) = %x not representable in %v",
							f, s, p, x, math.Float32bits(y), format)
					}
				}
			}
		}
	}
}

// TestEvaluatorBatchMatchesScalar: Evaluator.EvalBatch is bit-identical to
// per-element Evaluator.Eval at every precision, including across the fan-out
// threshold.
func TestEvaluatorBatchMatchesScalar(t *testing.T) {
	n := 2048
	if !testing.Short() {
		n = fanOutThreshold + 100 // exercise the fan-out path too
	}
	rng := rand.New(rand.NewSource(29))
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(rng.Float64()*200 - 100)
	}
	dst := make([]float32, n)
	for _, p := range Precisions {
		for _, f := range Funcs {
			e, err := New(f, EstrinFMA, WithPrecision(p))
			if err != nil {
				t.Fatal(err)
			}
			e.EvalBatch(dst, src)
			for i, x := range src {
				if want := e.Eval(x); math.Float32bits(dst[i]) != math.Float32bits(want) {
					t.Fatalf("%v/%v: batch(%g) = %b, scalar = %b", f, p, x, dst[i], want)
				}
			}
		}
	}
}

// TestEvaluatorBf16BatchExhaustive: the bfloat16 batch path answers
// representable inputs from the memo table, so it is checked over the ENTIRE
// bfloat16 input space — all 2^16 patterns, specials and subnormals included
// — against per-element scalar Eval, for every function and scheme. Batch
// and scalar must agree bit for bit (NaN payloads too).
func TestEvaluatorBf16BatchExhaustive(t *testing.T) {
	src := make([]float32, 1<<16)
	for i := range src {
		src[i] = math.Float32frombits(uint32(i) << 16)
	}
	dst := make([]float32, len(src))
	for _, f := range Funcs {
		for _, s := range Schemes {
			e, err := New(f, s, WithPrecision(PrecBfloat16))
			if err != nil {
				t.Fatal(err)
			}
			e.EvalBatch(dst, src)
			for i, x := range src {
				if want := e.Eval(x); math.Float32bits(dst[i]) != math.Float32bits(want) {
					t.Fatalf("%v/%v(%#08x): batch %#08x, scalar %#08x", f, s,
						math.Float32bits(x), math.Float32bits(dst[i]), math.Float32bits(want))
				}
			}
		}
	}
}

// TestEvaluatorBatchZeroAllocs: the resolved-dispatch batch path keeps the
// zero-allocation property of the package-level EvalBatch below the fan-out
// threshold.
func TestEvaluatorBatchZeroAllocs(t *testing.T) {
	e, err := New(FuncExp2, EstrinFMA, WithPrecision(PrecBfloat16))
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float32, 1024)
	for i := range src {
		src[i] = float32(i%200)/8 - 12
	}
	dst := make([]float32, len(src))
	if avg := testing.AllocsPerRun(20, func() { e.EvalBatch(dst, src) }); avg != 0 {
		t.Errorf("Evaluator.EvalBatch allocates %.1f objects per call on the inline path", avg)
	}
}

// TestParsePrecision: canonical names, aliases, case-insensitivity, and the
// enumerating error.
func TestParsePrecision(t *testing.T) {
	cases := map[string]Precision{
		"float32": PrecFloat32, "FP32": PrecFloat32, "full": PrecFloat32, "f32": PrecFloat32,
		"tf32": PrecTF32, "TensorFloat32": PrecTF32, "fp16": PrecTF32, "Float16": PrecTF32, "f16": PrecTF32,
		"bf16": PrecBfloat16, "BFLOAT16": PrecBfloat16,
	}
	for name, want := range cases {
		if got, err := ParsePrecision(name); err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePrecision("int8"); err == nil || !strings.Contains(err.Error(), "float32, tf32, bf16") {
		t.Errorf("ParsePrecision(int8) error = %v, want enumeration", err)
	}
	for _, p := range Precisions {
		if got, err := ParsePrecision(p.String()); err != nil || got != p {
			t.Errorf("ParsePrecision(%v.String()) = %v, %v", p, got, err)
		}
	}
	if PrecFloat32.Bits() != 32 || PrecTF32.Bits() != 19 || PrecBfloat16.Bits() != 16 {
		t.Error("Precision.Bits mismatch")
	}
}

// TestParseCaseInsensitive: the function and scheme parsers fold case so URL
// components like /v1/eval/EXP2/RLIBM-ESTRIN-FMA resolve.
func TestParseCaseInsensitive(t *testing.T) {
	if f, err := ParseFunc("EXP2"); err != nil || f != FuncExp2 {
		t.Errorf("ParseFunc(EXP2) = %v, %v", f, err)
	}
	if f, err := ParseFunc("Log10"); err != nil || f != FuncLog10 {
		t.Errorf("ParseFunc(Log10) = %v, %v", f, err)
	}
	if s, err := ParseScheme("RLIBM-ESTRIN-FMA"); err != nil || s != EstrinFMA {
		t.Errorf("ParseScheme(RLIBM-ESTRIN-FMA) = %v, %v", s, err)
	}
	if s, err := ParseScheme("Knuth"); err != nil || s != Knuth {
		t.Errorf("ParseScheme(Knuth) = %v, %v", s, err)
	}
	if _, err := ParseFunc("sin"); err == nil || !strings.Contains(err.Error(), "exp, exp2") {
		t.Errorf("ParseFunc(sin) error = %v, want enumeration", err)
	}
}

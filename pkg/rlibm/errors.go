package rlibm

import (
	"fmt"
	"strings"
)

// OptionError is the validation error for every configurable dimension of
// this package — function, scheme, precision and backend. New returns one
// when a combination is invalid, and the Parse* helpers return one for
// unknown names, so callers can match on the type (errors.As) and present
// the offending field with its valid values uniformly.
//
// The rendered message is "rlibm: unknown <field> <value> (valid: ...)" for
// every field — the shape ParsePrecision has always used, now shared by all
// validation paths.
type OptionError struct {
	Field string   // "function", "scheme", "precision" or "backend"
	Value string   // the rejected value, as printed
	Valid []string // the accepted canonical names, in order
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("rlibm: unknown %s %q (valid: %s)", e.Field, e.Value, strings.Join(e.Valid, ", "))
}

func errUnknownFunc(v any) error {
	return &OptionError{Field: "function", Value: fmt.Sprint(v), Valid: funcNames[:]}
}

func errUnknownScheme(v any) error {
	names := make([]string, NumSchemes)
	for i, s := range Schemes {
		names[i] = s.String()
	}
	return &OptionError{Field: "scheme", Value: fmt.Sprint(v), Valid: names}
}

func errUnknownPrecision(v any) error {
	return &OptionError{Field: "precision", Value: fmt.Sprint(v), Valid: precNames[:]}
}

func errUnknownBackend(v any, valid []string) error {
	if valid == nil {
		valid = backendNames[:]
	}
	return &OptionError{Field: "backend", Value: fmt.Sprint(v), Valid: valid}
}

package rlibm

import (
	"fmt"
	"strings"
)

// Precision selects the output precision an Evaluator serves. The generated
// polynomials are progressive (RLIBM-PROG): one coefficient table whose
// lower-degree prefixes are themselves correctly rounded for narrower
// formats, so narrow precisions run a shorter evaluation — not a post-hoc
// rounding of the full result, though the bits are identical to one.
type Precision int

const (
	// PrecFloat32 is the default full precision: the correctly rounded IEEE
	// binary32 result under round-to-nearest-even.
	PrecFloat32 Precision = iota
	// PrecTF32 is the FP16-class precision: the 19-bit format with an 8-bit
	// exponent and 11-bit significand precision (NVIDIA's TensorFloat32
	// layout). IEEE binary16's 5-bit exponent falls outside the generated
	// tables' 8-bit-exponent guarantee, so "fp16" resolves here.
	PrecTF32
	// PrecBfloat16 is bfloat16: 8-bit exponent, 8-bit significand precision.
	PrecBfloat16

	// NumPrecisions is the number of precisions.
	NumPrecisions = 3
)

// Precisions lists the supported precisions from widest to narrowest.
var Precisions = [NumPrecisions]Precision{PrecFloat32, PrecTF32, PrecBfloat16}

// precNames holds the canonical names, which are also the wire names the
// serving layer accepts ("prec" JSON field, binary query parameter, stream
// frame precision byte = the Precision value itself).
var precNames = [NumPrecisions]string{"float32", "tf32", "bf16"}

// precAliases maps every accepted (lower-cased) spelling to its precision.
var precAliases = map[string]Precision{
	"float32": PrecFloat32, "f32": PrecFloat32, "fp32": PrecFloat32, "full": PrecFloat32,
	"tf32": PrecTF32, "tensorfloat32": PrecTF32, "fp16": PrecTF32, "float16": PrecTF32, "f16": PrecTF32,
	"bf16": PrecBfloat16, "bfloat16": PrecBfloat16,
}

// String returns the precision's canonical name ("float32", "tf32", "bf16").
func (p Precision) String() string {
	if p.valid() {
		return precNames[p]
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// Bits returns the total width of the precision's output format (32, 19,
// 16). All three formats share float32's 8-bit exponent.
func (p Precision) Bits() int {
	switch p {
	case PrecTF32:
		return 19
	case PrecBfloat16:
		return 16
	}
	return 32
}

func (p Precision) valid() bool { return p >= PrecFloat32 && p < NumPrecisions }

// ParsePrecision resolves a precision name, case-insensitively. It accepts
// the canonical names ("float32", "tf32", "bf16") and common aliases
// ("f32", "fp32", "full"; "fp16", "float16", "f16", "tensorfloat32";
// "bfloat16").
func ParsePrecision(name string) (Precision, error) {
	if p, ok := precAliases[strings.ToLower(name)]; ok {
		return p, nil
	}
	return 0, errUnknownPrecision(name)
}

package rlibm

import (
	"fmt"
	"strings"

	"rlibm/internal/libm"
)

// Backend selects which generated batch-kernel shape an Evaluator dispatches
// to. All backends are bit-identical for every input — the generated vector
// kernels fall back to the scalar body per lane for special-case inputs, and
// the assembly conversion staging performs the exact widenings and
// round-to-nearest-even narrowings Go itself specifies — so the choice is
// purely a performance decision and BackendAuto is almost always right.
type Backend int

const (
	// BackendAuto picks the fastest backend available on this machine at
	// Evaluator construction: BackendAsm where the assembly conversion
	// staging exists (amd64 with AVX), BackendVector otherwise. It is the
	// zero value, so zero-configured callers get it by default.
	BackendAuto Backend = iota
	// BackendGo is the scalar blocked kernel: the polynomial body inlined
	// into a per-element loop. It is the portable baseline every other
	// backend is tested bit-identical against.
	BackendGo
	// BackendVector is the pure-Go vectorizable kernel: branch-free
	// lane-group loops (struct-of-arrays range reduction, mask-selected
	// special cases, FMA polynomial bodies) that the compiler can keep in
	// registers and pipeline. Portable to every GOARCH.
	BackendVector
	// BackendAsm is BackendVector behind assembly-staged float32↔float64
	// conversions (4-wide AVX VCVTPS2PD/VCVTPD2PSY). Only available where
	// the staging is built and the CPU supports it; requesting it elsewhere
	// is an error New reports.
	BackendAsm

	// NumBackends is the number of Backend values, BackendAuto included.
	NumBackends = 4
)

var backendNames = [NumBackends]string{"auto", "go", "vector", "asm"}

// String returns the backend's canonical name ("auto", "go", "vector",
// "asm").
func (b Backend) String() string {
	if b.valid() {
		return backendNames[b]
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

func (b Backend) valid() bool { return b >= BackendAuto && b < NumBackends }

// Available reports whether this backend can be constructed on this machine.
// BackendAuto, BackendGo and BackendVector always can; BackendAsm needs the
// assembly conversion staging (amd64 with AVX).
func (b Backend) Available() bool {
	switch b {
	case BackendAuto, BackendGo, BackendVector:
		return true
	case BackendAsm:
		return libm.AsmConvAvailable()
	}
	return false
}

// ParseBackend resolves a backend name, case-insensitively. It accepts the
// canonical names ("auto", "go", "vector", "asm") and common aliases
// ("scalar", "pure-go" → go; "vec", "simd" → vector; "avx", "assembly" →
// asm). Parsing does not check availability — New does, so a parsed
// BackendAsm on a machine without the staging fails at construction with the
// machine's valid set.
func ParseBackend(name string) (Backend, error) {
	switch strings.ToLower(name) {
	case "auto":
		return BackendAuto, nil
	case "go", "scalar", "pure-go":
		return BackendGo, nil
	case "vector", "vec", "simd":
		return BackendVector, nil
	case "asm", "avx", "assembly":
		return BackendAsm, nil
	}
	return 0, errUnknownBackend(name, nil)
}

// availableBackendNames lists the names of the concrete backends that can be
// constructed on this machine — the valid set New reports when an
// unavailable backend is requested.
func availableBackendNames() []string {
	names := make([]string, 0, NumBackends)
	for b := Backend(0); b < NumBackends; b++ {
		if b.Available() {
			names = append(names, b.String())
		}
	}
	return names
}

// resolveBackend maps BackendAuto to the fastest backend available on this
// machine; concrete backends resolve to themselves. The result is what
// Evaluator.Backend reports and what indexes the batch-kernel table.
func resolveBackend(b Backend) Backend {
	if b != BackendAuto {
		return b
	}
	if libm.AsmConvAvailable() {
		return BackendAsm
	}
	return BackendVector
}

// Backends returns the concrete backends available for (f, s, p) on this
// machine, in preference order (fastest first): the set WithBackend accepts
// here beyond BackendAuto. Every combination supports BackendGo and
// BackendVector; BackendAsm appears where the assembly conversion staging is
// built. An invalid f, s or p is reported as an *OptionError, like New.
func Backends(f Func, s Scheme, p Precision) ([]Backend, error) {
	if !f.valid() {
		return nil, errUnknownFunc(f)
	}
	if !s.valid() {
		return nil, errUnknownScheme(s)
	}
	if !p.valid() {
		return nil, errUnknownPrecision(p)
	}
	bs := make([]Backend, 0, NumBackends-1)
	if BackendAsm.Available() {
		bs = append(bs, BackendAsm)
	}
	bs = append(bs, BackendVector, BackendGo)
	return bs, nil
}

package rlibm

// Evaluator binds one (function, scheme, precision, backend) combination to
// its generated kernels. Constructing one validates the combination,
// resolves BackendAuto against the machine, and resolves the kernel dispatch
// once; Eval and EvalBatch then run with no per-call validation or map
// lookups, which is the form the serving layer and any long-lived client
// should hold.
//
// The zero Evaluator is not usable; build one with New.
type Evaluator struct {
	f Func
	s Scheme
	p Precision
	b Backend // resolved: never BackendAuto after New

	kernel func(float64) float64
	batch  func(dst, src []float32)
}

// Option configures New.
type Option func(*Evaluator)

// WithPrecision selects the output precision the Evaluator serves.
// PrecFloat32 (the default) runs the full polynomial; narrower precisions
// run the progressive prefix kernels, whose every result is the correctly
// rounded value of the narrow format (returned as a float32 that carries the
// narrow value exactly).
func WithPrecision(p Precision) Option {
	return func(e *Evaluator) { e.p = p }
}

// WithBackend selects the batch-kernel backend. The default, BackendAuto,
// resolves to the fastest backend available on this machine; a concrete
// backend pins the choice, and New fails with an *OptionError naming the
// machine's available set if it cannot be constructed here (BackendAsm
// without the assembly conversion staging). Backend choice never changes
// results — every backend is bit-identical — only batch throughput;
// Evaluator.Eval is the same scalar kernel under every backend.
func WithBackend(b Backend) Option {
	return func(e *Evaluator) { e.b = b }
}

// New returns an Evaluator for function f under scheme s. Invalid
// combinations are reported as *OptionError values enumerating the valid
// set, making New the natural sink for external input validated by
// ParseFunc, ParseScheme, ParsePrecision and ParseBackend.
func New(f Func, s Scheme, opts ...Option) (*Evaluator, error) {
	e := &Evaluator{f: f, s: s, p: PrecFloat32, b: BackendAuto}
	for _, opt := range opts {
		opt(e)
	}
	if !f.valid() {
		return nil, errUnknownFunc(f)
	}
	if !s.valid() {
		return nil, errUnknownScheme(s)
	}
	if !e.p.valid() {
		return nil, errUnknownPrecision(e.p)
	}
	if !e.b.valid() {
		return nil, errUnknownBackend(e.b, nil)
	}
	if !e.b.Available() {
		return nil, errUnknownBackend(e.b, availableBackendNames())
	}
	e.b = resolveBackend(e.b)
	e.kernel = kernels[f][s][e.p]
	e.batch = batchKernels[e.b][f][s][e.p]
	return e, nil
}

// Func returns the evaluator's function.
func (e *Evaluator) Func() Func { return e.f }

// Scheme returns the evaluator's polynomial-evaluation scheme.
func (e *Evaluator) Scheme() Scheme { return e.s }

// Prec returns the evaluator's output precision.
func (e *Evaluator) Prec() Precision { return e.p }

// Backend returns the evaluator's resolved backend — the one EvalBatch
// actually dispatches to, never BackendAuto. An evaluator built with
// BackendAuto reports what Auto resolved to on this machine.
func (e *Evaluator) Backend() Backend { return e.b }

// Eval returns the correctly rounded result at the evaluator's precision.
// For narrow precisions the returned float32 is exactly a value of the
// narrow format (bfloat16/tf32 embed exactly in float32).
func (e *Evaluator) Eval(x float32) float32 {
	return float32(e.kernel(float64(x)))
}

// EvalBatch evaluates every element of src into dst, with the same contract
// as the package-level EvalBatch: dst must be at least as long as src, extra
// dst capacity is untouched, results are bit-identical to per-element Eval
// calls, and slices of fanOutThreshold (32Ki) elements or more fan out
// across goroutines.
func (e *Evaluator) EvalBatch(dst, src []float32) {
	if len(dst) < len(src) {
		panic("rlibm: EvalBatch dst shorter than src")
	}
	evalBatch(e.batch, dst[:len(src)], src)
}

// Kernel returns the raw double-precision kernel: it maps a float64-widened
// float32 input to the double the evaluator narrows into its float32 result,
// so float32(e.Kernel()(float64(x))) == e.Eval(x) bit for bit. At full
// precision the double lies in the 34-bit round-to-odd interval of the exact
// result; at narrow precisions it is already the correctly rounded narrow
// value.
func (e *Evaluator) Kernel() func(float64) float64 { return e.kernel }
